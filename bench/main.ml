(* Benchmark harness: regenerates every table and figure of the paper
   plus the ablations called out in DESIGN.md.

   Sections
     P      (W,D) engine scaling: seed baseline vs CSR engine vs pool
     S      streamed path engine at scale: the 10^5-unit hierarchical family
     Q      warm-started MCMF engine vs per-round cold compiles
     R      global router: seed Dijkstra vs epoch-stamped A* vs pool
     T      observability: traced per-stage breakdown, trace-off guard
     E1/E2  Table 1 (min-area vs LAC-retiming, second iteration)
     E3     flip-flops-in-interconnect summary (paper 5)
     E4     alpha ablation (paper 4.2: alpha ~ 0.2 best)
     E5     run-time: LAC vs min-area, constraint pruning on/off
     A1     N_max ablation
     A2     tile-granularity ablation
     F1/F2  ASCII figures
     B      bechamel micro-benchmarks of the kernels

   Absolute numbers depend on the synthetic technology model; the
   reproduction targets are the shapes (see EXPERIMENTS.md).
   Set LACR_BENCH_FAST=1 to restrict to the smaller circuits. *)

module Planner = Lacr_core.Planner
module Report = Lacr_core.Report
module Config = Lacr_core.Config
module Build = Lacr_core.Build
module Lac = Lacr_core.Lac
module Suite = Lacr_circuits.Suite
module Synth = Lacr_circuits.Synth
module Graph = Lacr_retime.Graph
module Paths = Lacr_retime.Paths
module Feasibility = Lacr_retime.Feasibility
module Constraints = Lacr_retime.Constraints
module Min_area = Lacr_retime.Min_area
module Trace = Lacr_obs.Trace
module Tilegraph = Lacr_tilegraph.Tilegraph
module Gr = Lacr_routing.Global_router
module Steiner = Lacr_routing.Steiner
module Pool = Lacr_util.Pool

let section title =
  Printf.printf "\n%s\n%s\n%s\n\n%!" (String.make 78 '=') title (String.make 78 '=')

let timed f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let fast_mode =
  match Sys.getenv_opt "LACR_BENCH_FAST" with Some ("1" | "true") -> true | _ -> false

(* --only P,S,... restricts the run to the named sections (default:
   everything).  The scale section in particular is worth running on
   its own: `bench --only S --json FILE`. *)
let only_sections =
  let only = ref None in
  Array.iteri
    (fun i arg ->
      if arg = "--only" && i + 1 < Array.length Sys.argv then
        only := Some (String.split_on_char ',' Sys.argv.(i + 1)))
    Sys.argv;
  !only

let want section =
  match only_sections with None -> true | Some names -> List.mem section names

(* --- machine-readable timing log (--json FILE) ---

   Schema 4: FILE holds {schema: 4, timings: [...], stages: [...],
   router: [...], scale: [...]}.  [timings] keeps the schema-1 {name,
   circuit, domains, ms} objects; [stages] adds the per-stage
   breakdown of a traced planning run ({name, circuit, depth, count,
   ms} per pipeline span); [router] (schema 3) records section R's
   global-router runs as {circuit, engine, domains, ms, wirelength,
   overflow}; [scale] (new in 4) records section S's large-family
   runs as {circuit, units, vertices, stage, mode, domains, ms,
   major_words, top_heap_words, peak_rss_kb, pairs} — one row per
   pipeline stage per scale rung, so BENCH_*.json carries the memory
   trajectory (peak RSS and Gc major-heap words) of the streamed
   path engine alongside wall time. *)

let json_path =
  let path = ref None in
  Array.iteri
    (fun i arg -> if arg = "--json" && i + 1 < Array.length Sys.argv then path := Some Sys.argv.(i + 1))
    Sys.argv;
  (* Fail fast on an unwritable path rather than losing a full bench run
     to a Sys_error at write-out time. *)
  (match !path with
   | Some p ->
     (try close_out (open_out p)
      with Sys_error msg ->
        Printf.eprintf "bench: cannot write --json file: %s\n%!" msg;
        exit 2)
   | None -> ());
  !path

(* Aggregated flow-solver counters of one LAC run: number of weighted
   retiming rounds plus the totals over every round's Mcmf.stats. *)
type solver_totals = {
  s_rounds : int;
  s_phases : int;
  s_settles : int;
  s_pushes : int;
  s_warm_hits : int;
}

type timing = {
  t_name : string;
  t_circuit : string;
  t_domains : int;
  t_ms : float;
  t_solver : solver_totals option;
}

let timings : timing list ref = ref []

(* One row of the traced planner's per-stage breakdown (section T). *)
type stage = {
  g_name : string;
  g_circuit : string;
  g_depth : int;
  g_count : int;
  g_ms : float;
}

let stages : stage list ref = ref []

(* One global-router measurement of section R. *)
type router_row = {
  r_circuit : string;
  r_engine : string;
  r_domains : int;
  r_ms : float;
  r_wirelength : float;
  r_overflow : float;
}

let router_rows : router_row list ref = ref []

let log_router ~circuit ~engine ~domains ~wirelength ~overflow seconds =
  router_rows :=
    {
      r_circuit = circuit;
      r_engine = engine;
      r_domains = domains;
      r_ms = 1000.0 *. seconds;
      r_wirelength = wirelength;
      r_overflow = overflow;
    }
    :: !router_rows

let log_stage ~name ~circuit ~depth ~count ms =
  stages := { g_name = name; g_circuit = circuit; g_depth = depth; g_count = count; g_ms = ms } :: !stages

let log_timing ?solver ~name ~circuit ~domains seconds =
  timings :=
    {
      t_name = name;
      t_circuit = circuit;
      t_domains = domains;
      t_ms = 1000.0 *. seconds;
      t_solver = solver;
    }
    :: !timings

(* One pipeline-stage measurement of a section S scale rung.
   [c_pairs] is the number of (W,D) pairs the paths stage retained:
   the streamed frontier size, or n^2 for the dense backend. *)
type scale_row = {
  c_circuit : string;
  c_units : int;
  c_vertices : int;
  c_stage : string;
  c_mode : string;
  c_domains : int;
  c_ms : float;
  c_major_words : float;  (* words allocated on the major heap during the stage *)
  c_top_heap_words : float;  (* max major-heap size so far, after the stage *)
  c_peak_rss_kb : int;  (* process VmHWM after the stage; 0 outside Linux *)
  c_pairs : int;
}

let scale_rows : scale_row list ref = ref []

let log_scale row = scale_rows := row :: !scale_rows

(* Peak resident set size of this process, from the kernel's
   high-water mark.  Unlike Gc counters this also sees the graph,
   floorplan and router structures, which is the honest denominator
   for a "fits in memory" claim. *)
let vm_hwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    let kb = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
           Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d" (fun v -> kb := v)
       done
     with End_of_file | Scanf.Scan_failure _ | Failure _ -> ());
    close_in ic;
    !kb

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path =
  let oc = open_out path in
  output_string oc "{\n  \"schema\": 4,\n  \"timings\": [\n";
  List.iteri
    (fun i t ->
      let solver =
        match t.t_solver with
        | None -> ""
        | Some s ->
          Printf.sprintf
            ", \"solver\": {\"rounds\": %d, \"phases\": %d, \"settles\": %d, \"pushes\": %d, \
             \"warm_hits\": %d}"
            s.s_rounds s.s_phases s.s_settles s.s_pushes s.s_warm_hits
      in
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"circuit\": \"%s\", \"domains\": %d, \"ms\": %.3f%s}%s\n"
        (json_escape t.t_name) (json_escape t.t_circuit) t.t_domains t.t_ms solver
        (if i = List.length !timings - 1 then "" else ","))
    (List.rev !timings);
  output_string oc "  ],\n  \"stages\": [\n";
  List.iteri
    (fun i s ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"circuit\": \"%s\", \"depth\": %d, \"count\": %d, \"ms\": %.3f}%s\n"
        (json_escape s.g_name) (json_escape s.g_circuit) s.g_depth s.g_count s.g_ms
        (if i = List.length !stages - 1 then "" else ","))
    (List.rev !stages);
  output_string oc "  ],\n  \"router\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"circuit\": \"%s\", \"engine\": \"%s\", \"domains\": %d, \"ms\": %.3f, \
         \"wirelength\": %.6f, \"overflow\": %.6f}%s\n"
        (json_escape r.r_circuit) (json_escape r.r_engine) r.r_domains r.r_ms r.r_wirelength
        r.r_overflow
        (if i = List.length !router_rows - 1 then "" else ","))
    (List.rev !router_rows);
  output_string oc "  ],\n  \"scale\": [\n";
  List.iteri
    (fun i c ->
      Printf.fprintf oc
        "    {\"circuit\": \"%s\", \"units\": %d, \"vertices\": %d, \"stage\": \"%s\", \
         \"mode\": \"%s\", \"domains\": %d, \"ms\": %.3f, \"major_words\": %.0f, \
         \"top_heap_words\": %.0f, \"peak_rss_kb\": %d, \"pairs\": %d}%s\n"
        (json_escape c.c_circuit) c.c_units c.c_vertices (json_escape c.c_stage)
        (json_escape c.c_mode) c.c_domains c.c_ms c.c_major_words c.c_top_heap_words
        c.c_peak_rss_kb c.c_pairs
        (if i = List.length !scale_rows - 1 then "" else ","))
    (List.rev !scale_rows);
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote timing log: %s (%d timings, %d stages, %d router rows, %d scale rows)\n"
    path (List.length !timings) (List.length !stages) (List.length !router_rows)
    (List.length !scale_rows)

let table1_circuits () =
  let all = Suite.table1 () in
  if fast_mode then List.filteri (fun i _ -> i < 4) all else all

(* A medium circuit reused by the ablations and micro-benchmarks. *)
let ablation_instance () =
  let netlist = Option.get (Suite.by_name "s526") in
  match Build.build netlist with
  | Ok inst -> inst
  | Error msg -> failwith msg

let constraint_setup ?(prune = true) (inst : Build.instance) =
  let g = inst.Build.graph in
  let wd = Paths.compute g in
  let extra = inst.Build.pin_constraints in
  let mp = Feasibility.min_period ~extra g wd in
  let t_init = Graph.clock_period g in
  let t_clk = mp.Feasibility.period +. (0.2 *. (t_init -. mp.Feasibility.period)) in
  (wd, t_clk, Constraints.generate ~prune ~extra g wd ~period:t_clk)

(* --- P: (W,D) engine scaling --- *)

(* The growth seed's (W,D) implementation, kept verbatim as the
   speedup baseline: per-source Dijkstra over fanout edge *lists* with
   the polymorphic float-priority heap, and a tight-edge pass that
   rebuilds list adjacency for every source.  The live engine
   (Paths.compute) replaces this with CSR arrays, a monomorphic int
   heap, reusable scratch and a domain pool. *)
module Seed_paths = struct
  let min_weights g source =
    let n = Graph.num_vertices g in
    let dist = Array.make n max_int in
    let settled = Array.make n false in
    let heap = Lacr_util.Heap.create () in
    dist.(source) <- 0;
    Lacr_util.Heap.push heap 0.0 source;
    let rec loop () =
      match Lacr_util.Heap.pop heap with
      | None -> ()
      | Some (_, u) ->
        if not settled.(u) then begin
          settled.(u) <- true;
          let relax (e : Graph.edge) =
            let v = e.Graph.dst in
            if (not settled.(v)) && dist.(u) <> max_int then begin
              let nd = dist.(u) + e.Graph.weight in
              if nd < dist.(v) then begin
                dist.(v) <- nd;
                Lacr_util.Heap.push heap (float_of_int nd) v
              end
            end
          in
          List.iter relax (Graph.fanout_edges g u)
        end;
        loop ()
    in
    loop ();
    dist

  let max_delays g source wrow =
    let n = Graph.num_vertices g in
    let tight_out = Array.make n [] in
    let indeg = Array.make n 0 in
    let record (e : Graph.edge) =
      let x = e.Graph.src and y = e.Graph.dst in
      if wrow.(x) <> max_int && wrow.(y) <> max_int && wrow.(x) + e.Graph.weight = wrow.(y)
      then begin
        tight_out.(x) <- y :: tight_out.(x);
        indeg.(y) <- indeg.(y) + 1
      end
    in
    Array.iter record (Graph.edges g);
    let drow = Array.make n neg_infinity in
    drow.(source) <- Graph.delay g source;
    let queue = Queue.create () in
    for v = 0 to n - 1 do
      if indeg.(v) = 0 then Queue.add v queue
    done;
    while not (Queue.is_empty queue) do
      let x = Queue.pop queue in
      let relax y =
        if drow.(x) > neg_infinity then begin
          let cand = drow.(x) +. Graph.delay g y in
          if cand > drow.(y) then drow.(y) <- cand
        end;
        indeg.(y) <- indeg.(y) - 1;
        if indeg.(y) = 0 then Queue.add y queue
      in
      List.iter relax tight_out.(x)
    done;
    drow

  let compute g =
    let n = Graph.num_vertices g in
    let w = Array.make n [||] and d = Array.make n [||] in
    for u = 0 to n - 1 do
      let wrow = min_weights g u in
      let drow = max_delays g u wrow in
      w.(u) <- wrow;
      d.(u) <- drow
    done;
    Paths.Dense { Paths.w; d }
end

let retime_graph_of name =
  let netlist = Option.get (Suite.by_name name) in
  match Lacr_netlist.Seqview.of_netlist netlist with
  | Ok view -> Graph.of_seqview view
  | Error msg -> failwith msg

let wd_equal (a : Paths.wd) (b : Paths.wd) =
  match (a, b) with
  | Paths.Dense a, Paths.Dense b -> a.Paths.w = b.Paths.w && a.Paths.d = b.Paths.d
  | Paths.Streamed a, Paths.Streamed b ->
    a.Paths.row_off = b.Paths.row_off
    && a.Paths.fdst = b.Paths.fdst
    && a.Paths.fwgt = b.Paths.fwgt
    && a.Paths.fdly = b.Paths.fdly
  | _ -> false

let best_of_runs reps f =
  let best = ref infinity in
  let result = ref None in
  for _rep = 1 to reps do
    let r, dt = timed f in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

let run_wd_scaling () =
  section "P   (W,D) path-matrix engine: seed baseline vs CSR engine vs domain pool";
  let circuits = if fast_mode then [ "s526" ] else [ "s526"; "s953"; "s1423" ] in
  let reps = if fast_mode then 3 else 5 in
  let domain_counts = [ 2; 4 ] in
  Printf.printf "%-8s %6s %6s | %10s %10s %s | %8s %10s\n" "circuit" "n" "edges" "seed(ms)"
    "csr(ms)"
    (String.concat " " (List.map (fun d -> Printf.sprintf "%8s" (Printf.sprintf "%dd(ms)" d)) domain_counts))
    "speedup" "identical";
  List.iter
    (fun name ->
      let g = retime_graph_of name in
      let n = Graph.num_vertices g and m = Graph.num_edges g in
      let seed_wd, seed_dt = best_of_runs reps (fun () -> Seed_paths.compute g) in
      log_timing ~name:"wd-seed" ~circuit:name ~domains:1 seed_dt;
      let seq_wd, seq_dt = best_of_runs reps (fun () -> Paths.compute g) in
      log_timing ~name:"wd-csr" ~circuit:name ~domains:1 seq_dt;
      let pool_results =
        List.map
          (fun domains ->
            Lacr_util.Pool.with_pool ~size:domains (fun pool ->
                let wd, dt = best_of_runs reps (fun () -> Paths.compute ~pool g) in
                log_timing ~name:"wd-csr" ~circuit:name ~domains dt;
                (wd, dt)))
          domain_counts
      in
      let identical =
        wd_equal seed_wd seq_wd && List.for_all (fun (wd, _) -> wd_equal seq_wd wd) pool_results
      in
      let best_parallel = List.fold_left (fun acc (_, dt) -> min acc dt) seq_dt pool_results in
      Printf.printf "%-8s %6d %6d | %10.2f %10.2f %s | %7.2fx %10s\n%!" name n m
        (1000.0 *. seed_dt) (1000.0 *. seq_dt)
        (String.concat " " (List.map (fun (_, dt) -> Printf.sprintf "%8.2f" (1000.0 *. dt)) pool_results))
        (seed_dt /. best_parallel)
        (if identical then "yes" else "NO!");
      if not identical then failwith (name ^ ": parallel (W,D) differs from sequential"))
    circuits;
  Printf.printf
    "\n(speedup = seed baseline / best engine time; 'identical' checks the w and d\n\
     matrices cell for cell across all engines and pool sizes)\n"

(* --- S: streamed path engine at scale --- *)

let mem_total_kb () =
  match open_in "/proc/meminfo" with
  | exception Sys_error _ -> 0
  | ic ->
    let kb = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.length line > 9 && String.sub line 0 9 = "MemTotal:" then
           Scanf.sscanf (String.sub line 9 (String.length line - 9)) " %d" (fun v -> kb := v)
       done
     with End_of_file | Scanf.Scan_failure _ | Failure _ -> ());
    close_in ic;
    !kb

let gib bytes = bytes /. (1024.0 *. 1024.0 *. 1024.0)

(* The constraint systems the two backends produce must agree term for
   term; section S re-checks it on the scale family the way P/Q/R
   check their engines (QCheck covers random circuits, the s1423 pin
   covers the suite). *)
let cs_equal (a : Constraints.t) (b : Constraints.t) =
  a.Constraints.period = b.Constraints.period
  && a.Constraints.constraints = b.Constraints.constraints

let run_scale () =
  section "S   streamed path engine at scale: the 10^5-unit hierarchical family";
  let domains = 4 in
  (* Stream rungs ascending, dense comparison rung last, so each
     stream row's process-lifetime peak RSS is not polluted by the
     dense matrices. *)
  let stream_units = if fast_mode then [ 5_000 ] else [ 20_000; 100_000 ] in
  let compare_units = if fast_mode then 5_000 else 20_000 in
  Printf.printf "%-12s %-20s %-7s %10s %10s %10s %9s %12s\n" "circuit" "stage" "mode" "ms"
    "major(Mw)" "heap(Mw)" "rss(MB)" "pairs";
  let measured = Hashtbl.create 8 in
  let rung ~mode units =
    let name = Printf.sprintf "hier:%d" units in
    let spec = Synth.hier_spec ~units name in
    let netlist = Synth.generate_hier spec in
    let paths_mode = match mode with "dense" -> Paths.Mode.Dense | _ -> Paths.Mode.Stream in
    let config = { Config.default with Config.paths_mode = paths_mode } in
    Pool.with_pool ~size:domains (fun pool ->
        let vertices = ref 0 in
        let stage c_stage ?(pairs_of = fun _ -> 0) f =
          let g0 = Gc.quick_stat () in
          let r, dt = timed f in
          let g1 = Gc.quick_stat () in
          let row =
            {
              c_circuit = name;
              c_units = units;
              c_vertices = !vertices;
              c_stage;
              c_mode = mode;
              c_domains = domains;
              c_ms = 1000.0 *. dt;
              c_major_words = g1.Gc.major_words -. g0.Gc.major_words;
              c_top_heap_words = float_of_int g1.Gc.top_heap_words;
              c_peak_rss_kb = vm_hwm_kb ();
              c_pairs = pairs_of r;
            }
          in
          log_scale row;
          Printf.printf "%-12s %-20s %-7s %10.1f %10.1f %10.1f %9.1f %12d\n%!" name c_stage
            mode row.c_ms (row.c_major_words /. 1e6) (row.c_top_heap_words /. 1e6)
            (float_of_int row.c_peak_rss_kb /. 1024.0)
            row.c_pairs;
          r
        in
        let inst =
          stage "build" (fun () ->
              match Build.build ~config ~pool netlist with
              | Ok inst ->
                vertices := Graph.num_vertices inst.Build.graph;
                inst
              | Error msg -> failwith (name ^ ": " ^ msg))
        in
        let g = inst.Build.graph in
        let n = !vertices in
        let wd =
          stage "paths.compute"
            ~pairs_of:(function
              | Paths.Dense _ -> n * n
              | Paths.Streamed fr -> Array.length fr.Paths.fdst)
            (fun () -> Paths.compute ~mode:paths_mode ~pool g)
        in
        let extra = inst.Build.pin_constraints in
        let mp = stage "min_period" (fun () -> Feasibility.min_period ~extra g wd) in
        let t_init = Graph.clock_period g in
        let t_clk = mp.Feasibility.period +. (0.2 *. (t_init -. mp.Feasibility.period)) in
        let cs =
          stage "constraints.generate" (fun () ->
              Constraints.generate ~prune:true ~extra ~pool g wd ~period:t_clk)
        in
        ignore
          (stage "lac.retime" (fun () ->
               match Lac.retime ~pool inst cs with
               | Ok o -> o.Lac.n_foa
               | Error msg -> failwith (name ^ ": lac: " ^ msg)));
        Hashtbl.replace measured (units, mode) (n, mp.Feasibility.period, cs))
  in
  List.iter (rung ~mode:"stream") stream_units;
  rung ~mode:"dense" compare_units;
  (* Backend identity on the comparison rung. *)
  let n_cmp, p_s, cs_s = Hashtbl.find measured (compare_units, "stream") in
  let _, p_d, cs_d = Hashtbl.find measured (compare_units, "dense") in
  let identical = p_s = p_d && cs_equal cs_s cs_d in
  Printf.printf "\nbackend identity at hier:%d: min period %s, constraint system %s\n"
    compare_units
    (if p_s = p_d then "identical" else "DIFFERS!")
    (if cs_equal cs_s cs_d then "identical" else "DIFFERS!");
  if not identical then failwith "scale: streamed backend differs from dense";
  ignore n_cmp;
  (* The memory-wall arithmetic: what the dense matrices alone would
     cost at the largest stream rung, against this machine's RAM. *)
  let top_units = List.fold_left max 0 stream_units in
  let top_n, _, _ = Hashtbl.find measured (top_units, "stream") in
  let dense_bytes = 2.0 *. float_of_int top_n *. float_of_int top_n *. 8.0 in
  let ram_kb = mem_total_kb () in
  Printf.printf
    "dense (W,D) at n=%d: 2 x n^2 x 8 = %.0f GiB of matrices alone%s\n" top_n
    (gib dense_bytes)
    (if ram_kb > 0 && dense_bytes > 1024.0 *. float_of_int ram_kb then
       Printf.sprintf " — exceeds this machine's %.0f GiB RAM; only the streamed backend \
                       plans this circuit" (gib (1024.0 *. float_of_int ram_kb))
     else "");
  Printf.printf
    "\n(per-stage wall time, major-heap allocation (Mwords), max major heap so far\n\
     (Mwords), process peak RSS (VmHWM), and retained (W,D) pairs: the streamed\n\
     frontier vs the dense n^2.  Stream rungs run before the dense comparison so\n\
     their RSS high-water marks are their own.)\n"

(* --- Q: warm-started successive-instance MCMF engine --- *)

let solver_totals (outcome : Lac.outcome) =
  List.fold_left
    (fun acc (s : Lacr_mcmf.Mcmf.stats) ->
      {
        acc with
        s_phases = acc.s_phases + s.Lacr_mcmf.Mcmf.phases;
        s_settles = acc.s_settles + s.Lacr_mcmf.Mcmf.settles;
        s_pushes = acc.s_pushes + s.Lacr_mcmf.Mcmf.pushes;
        s_warm_hits = (acc.s_warm_hits + if s.Lacr_mcmf.Mcmf.warm_start then 1 else 0);
      })
    {
      s_rounds = List.length outcome.Lac.solver;
      s_phases = 0;
      s_settles = 0;
      s_pushes = 0;
      s_warm_hits = 0;
    }
    outcome.Lac.solver

let lac_outcome_equal (a : Lac.outcome) (b : Lac.outcome) =
  a.Lac.labels = b.Lac.labels && a.Lac.n_foa = b.Lac.n_foa && a.Lac.n_f = b.Lac.n_f
  && a.Lac.n_fn = b.Lac.n_fn && a.Lac.trace = b.Lac.trace

let run_warm_engine () =
  section "Q   warm-started MCMF engine: per-round cold compiles vs successive instances";
  let circuits = if fast_mode then [ "s526" ] else [ "s526"; "s953"; "s1423" ] in
  let reps = if fast_mode then 2 else 3 in
  Printf.printf "%-8s %6s | %10s %10s %10s | %8s %10s %10s\n" "circuit" "rounds" "cold(ms)"
    "warm(ms)" "warm2d(ms)" "speedup" "warm-hits" "identical";
  List.iter
    (fun name ->
      let netlist = Option.get (Suite.by_name name) in
      let inst = match Build.build netlist with Ok i -> i | Error msg -> failwith msg in
      let _, _, cs = constraint_setup inst in
      let run ?reuse ?pool () =
        match Lac.retime ?reuse ?pool inst cs with Ok o -> o | Error msg -> failwith (name ^ ": " ^ msg)
      in
      let cold, cold_dt = best_of_runs reps (fun () -> run ~reuse:false ()) in
      log_timing ~name:"lac-cold" ~circuit:name ~domains:1 ~solver:(solver_totals cold) cold_dt;
      let warm, warm_dt = best_of_runs reps (fun () -> run ()) in
      log_timing ~name:"lac-warm" ~circuit:name ~domains:1 ~solver:(solver_totals warm) warm_dt;
      let warm2, warm2_dt =
        Lacr_util.Pool.with_pool ~size:2 (fun pool -> best_of_runs reps (fun () -> run ~pool ()))
      in
      log_timing ~name:"lac-warm" ~circuit:name ~domains:2 ~solver:(solver_totals warm2) warm2_dt;
      let identical = lac_outcome_equal cold warm && lac_outcome_equal cold warm2 in
      let totals = solver_totals warm in
      Printf.printf "%-8s %6d | %10.2f %10.2f %10.2f | %7.2fx %6d/%-3d %10s\n%!" name
        totals.s_rounds (1000.0 *. cold_dt) (1000.0 *. warm_dt) (1000.0 *. warm2_dt)
        (cold_dt /. warm_dt) totals.s_warm_hits totals.s_rounds
        (if identical then "yes" else "NO!");
      if not identical then
        failwith (name ^ ": warm-started engine outcome differs from cold per-round compiles"))
    circuits;
  Printf.printf
    "\n(cold recompiles the flow network every re-weighting round; warm compiles once and\n\
     reuses the previous round's dual potentials; 'identical' checks labels, N_FOA, N_F,\n\
     N_FN and the full convergence trace across engines and pool sizes)\n"

(* --- R: negotiated-congestion global router --- *)

(* The growth seed's global router, kept verbatim as the speedup
   baseline: per-query float Dijkstra on the polymorphic heap with
   fresh O(cells) arrays per source/sink pair, Hashtbl-adjacency BFS
   for sink-path recovery, and a sequential rip-up loop that re-routes
   every net crossing an overflowed boundary.  The live engine
   (Global_router.route_all) replaces this with epoch-stamped integer
   A*/bidirectional search, CSR sink recovery, PathFinder history and
   speculative parallel negotiation over a domain pool. *)
module Seed_router = struct
  module Smaze = struct
    type usage = { tg : Tilegraph.t; h : float array; v : float array }

    let create tg =
      let nx, ny = Tilegraph.grid_dims tg in
      { tg; h = Array.make ((nx - 1) * ny) 0.0; v = Array.make (nx * (ny - 1)) 0.0 }

    let boundary u a b =
      let nx, _ = Tilegraph.grid_dims u.tg in
      let ra = a / nx and ca = a mod nx in
      let rb = b / nx and cb = b mod nx in
      if ra = rb && abs (ca - cb) = 1 then `H ((ra * (nx - 1)) + min ca cb)
      else if ca = cb && abs (ra - rb) = 1 then `V ((min ra rb * nx) + ca)
      else invalid_arg "Seed_router: cells not adjacent"

    let demand u a b = match boundary u a b with `H i -> u.h.(i) | `V i -> u.v.(i)

    let bump u a b delta =
      match boundary u a b with
      | `H i -> u.h.(i) <- max 0.0 (u.h.(i) +. delta)
      | `V i -> u.v.(i) <- max 0.0 (u.v.(i) +. delta)

    let rec iter_steps f = function
      | a :: (b :: _ as rest) ->
        f a b;
        iter_steps f rest
      | [ _ ] | [] -> ()

    let add_path u path = iter_steps (fun a b -> bump u a b 1.0) path
    let remove_path u path = iter_steps (fun a b -> bump u a b (-1.0)) path
    let capacity u = (Tilegraph.config u.tg).Tilegraph.edge_capacity

    let overflow u =
      let cap = capacity u in
      let over acc d = if d > cap then acc +. (d -. cap) else acc in
      Array.fold_left over (Array.fold_left over 0.0 u.h) u.v

    let congestion_penalty ~after_cap ~cap =
      let ratio = after_cap /. cap in
      if ratio <= 0.7 then 0.1 *. ratio
      else if ratio <= 1.0 then 0.1 +. (3.0 *. (ratio -. 0.7))
      else 1.0 +. ((ratio -. 1.0) *. (ratio -. 1.0) *. 20.0)

    let route u ~congestion_weight ~src ~dst =
      if src = dst then [ src ]
      else begin
        let tg = u.tg in
        let n = Tilegraph.num_cells tg in
        let pitch_x, pitch_y = Tilegraph.cell_pitch tg in
        let cap = capacity u in
        let dist = Array.make n infinity in
        let prev = Array.make n (-1) in
        let settled = Array.make n false in
        let heap = Lacr_util.Heap.create () in
        dist.(src) <- 0.0;
        Lacr_util.Heap.push heap 0.0 src;
        let nx, _ = Tilegraph.grid_dims tg in
        (try
           let rec loop () =
             match Lacr_util.Heap.pop heap with
             | None -> ()
             | Some (d, cell) ->
               if not settled.(cell) then begin
                 settled.(cell) <- true;
                 if cell = dst then raise Exit;
                 let relax next =
                   if not settled.(next) then begin
                     let pitch = if cell / nx = next / nx then pitch_x else pitch_y in
                     let after_cap = demand u cell next +. 1.0 in
                     let penalty = congestion_penalty ~after_cap ~cap in
                     let blockage =
                       match
                         (Tilegraph.tiles tg).(Tilegraph.tile_of_cell tg next).Tilegraph.kind
                       with
                       | Tilegraph.Hard_cell _ -> 1.6
                       | Tilegraph.Soft_merged _ -> 1.2
                       | Tilegraph.Channel -> 1.0
                     in
                     let step = pitch *. blockage *. (1.0 +. (congestion_weight *. penalty)) in
                     let nd = d +. step in
                     if nd < dist.(next) -. 1e-12 then begin
                       dist.(next) <- nd;
                       prev.(next) <- cell;
                       Lacr_util.Heap.push heap nd next
                     end
                   end
                 in
                 List.iter relax (Tilegraph.cell_neighbors tg cell)
               end;
               loop ()
           in
           loop ()
         with Exit -> ());
        let rec walk cell acc =
          if cell = src then src :: acc else walk prev.(cell) (cell :: acc)
        in
        if prev.(dst) < 0 && dst <> src then [ src ] else walk dst []
      end
  end

  type routed_net = { net : Gr.net; segments : int list list; wirelength : float }

  let path_length tg path =
    let pitch_x, pitch_y = Tilegraph.cell_pitch tg in
    let nx, _ = Tilegraph.grid_dims tg in
    let rec go acc = function
      | a :: (b :: _ as rest) ->
        let step = if a / nx = b / nx then pitch_x else pitch_y in
        go (acc +. step) rest
      | [ _ ] | [] -> acc
    in
    go 0.0 path

  let route_net tg usage ~congestion_weight (net : Gr.net) =
    let terminals =
      Array.to_list (Array.append [| net.Gr.source_cell |] net.Gr.sink_cells)
      |> List.sort_uniq Int.compare
    in
    match terminals with
    | [] | [ _ ] -> { net; segments = []; wirelength = 0.0 }
    | _ ->
      let term_arr = Array.of_list terminals in
      let centers = Array.map (Tilegraph.cell_center tg) term_arr in
      let tree = Steiner.build centers in
      let cell_of_tree_point i =
        if i < Array.length term_arr then term_arr.(i)
        else Tilegraph.cell_of_point tg tree.Steiner.points.(i)
      in
      let segments =
        List.filter_map
          (fun (a, b) ->
            let ca = cell_of_tree_point a and cb = cell_of_tree_point b in
            if ca = cb then None
            else begin
              let path = Smaze.route usage ~congestion_weight ~src:ca ~dst:cb in
              Smaze.add_path usage path;
              Some path
            end)
          tree.Steiner.edges
      in
      (* The seed recovered per-sink paths by BFS over a Hashtbl
         adjacency of the union of segments; that work is part of the
         baseline cost being measured. *)
      let adj = Hashtbl.create 64 in
      let link a b =
        Hashtbl.replace adj a (b :: (try Hashtbl.find adj a with Not_found -> []));
        Hashtbl.replace adj b (a :: (try Hashtbl.find adj b with Not_found -> []))
      in
      List.iter (fun path -> Smaze.iter_steps link path) segments;
      let bfs_path target =
        if target = net.Gr.source_cell then [ net.Gr.source_cell ]
        else begin
          let parent = Hashtbl.create 64 in
          let queue = Queue.create () in
          Queue.add net.Gr.source_cell queue;
          Hashtbl.replace parent net.Gr.source_cell net.Gr.source_cell;
          let found = ref false in
          while (not !found) && not (Queue.is_empty queue) do
            let cell = Queue.pop queue in
            if cell = target then found := true
            else
              List.iter
                (fun next ->
                  if not (Hashtbl.mem parent next) then begin
                    Hashtbl.replace parent next cell;
                    Queue.add next queue
                  end)
                (try Hashtbl.find adj cell with Not_found -> [])
          done;
          if not !found then [ net.Gr.source_cell; target ]
          else begin
            let rec back cell acc =
              if cell = net.Gr.source_cell then net.Gr.source_cell :: acc
              else back (Hashtbl.find parent cell) (cell :: acc)
            in
            back target []
          end
        end
      in
      Array.iter (fun sink -> ignore (bfs_path sink)) net.Gr.sink_cells;
      let wirelength = List.fold_left (fun acc p -> acc +. path_length tg p) 0.0 segments in
      { net; segments; wirelength }

  let crosses_overflow usage routed =
    let cap = Smaze.capacity usage in
    let rec over_path = function
      | a :: (b :: _ as rest) -> Smaze.demand usage a b > cap || over_path rest
      | [ _ ] | [] -> false
    in
    List.exists over_path routed.segments

  let route_all ?(passes = 2) ?(congestion_weight = 1.0) ?(reroute_weight = 4.0) tg nets =
    let usage = Smaze.create tg in
    let routed = Array.map (route_net tg usage ~congestion_weight) nets in
    for _pass = 1 to passes do
      if Smaze.overflow usage > 0.0 then
        Array.iteri
          (fun i r ->
            if crosses_overflow usage r then begin
              List.iter (Smaze.remove_path usage) r.segments;
              routed.(i) <- route_net tg usage ~congestion_weight:reroute_weight r.net
            end)
          routed
    done;
    let total_wirelength = Array.fold_left (fun acc r -> acc +. r.wirelength) 0.0 routed in
    (total_wirelength, Smaze.overflow usage)
end

(* Bit-identity across pool sizes: the full routed outcome, not just
   the aggregates — per-net segments, sink paths and wirelengths, the
   usage arrays and the per-pass overflow trajectory. *)
let router_outcome_equal (a : Gr.result) (b : Gr.result) =
  Array.length a.Gr.nets = Array.length b.Gr.nets
  && Array.for_all2
       (fun (x : Gr.routed_net) (y : Gr.routed_net) ->
         x.Gr.segments = y.Gr.segments
         && x.Gr.sink_paths = y.Gr.sink_paths
         && x.Gr.wirelength = y.Gr.wirelength)
       a.Gr.nets b.Gr.nets
  && a.Gr.total_wirelength = b.Gr.total_wirelength
  && a.Gr.overflow = b.Gr.overflow
  && a.Gr.max_utilization = b.Gr.max_utilization
  && a.Gr.pass_overflow = b.Gr.pass_overflow

let run_router_scaling () =
  section "R   global router: seed Dijkstra baseline vs epoch-stamped A* vs domain pool";
  let circuits = if fast_mode then [ "s526" ] else [ "s1269"; "s1423" ] in
  let reps = if fast_mode then 3 else 7 in
  let domain_counts = [ 2; 4 ] in
  Printf.printf "%-8s %6s | %10s %10s %s | %7s %7s %10s\n" "circuit" "nets" "seed(ms)" "astar(ms)"
    (String.concat " "
       (List.map (fun d -> Printf.sprintf "%8s" (Printf.sprintf "%dd(ms)" d)) domain_counts))
    "1d-spd" "par-spd" "identical";
  List.iter
    (fun name ->
      let netlist = Option.get (Suite.by_name name) in
      let inst = match Build.build netlist with Ok i -> i | Error msg -> failwith msg in
      let tg = inst.Build.tilegraph in
      let nets = Array.map (fun (r : Gr.routed_net) -> r.Gr.net) inst.Build.routing.Gr.nets in
      let (seed_wl, seed_ov), seed_dt =
        best_of_runs reps (fun () -> Seed_router.route_all tg nets)
      in
      log_router ~circuit:name ~engine:"seed" ~domains:1 ~wirelength:seed_wl ~overflow:seed_ov
        seed_dt;
      let base, base_dt = best_of_runs reps (fun () -> Gr.route_all tg nets) in
      log_router ~circuit:name ~engine:"astar" ~domains:1 ~wirelength:base.Gr.total_wirelength
        ~overflow:base.Gr.overflow base_dt;
      let pool_results =
        List.map
          (fun domains ->
            Pool.with_pool ~size:domains (fun pool ->
                let res, dt = best_of_runs reps (fun () -> Gr.route_all ~pool tg nets) in
                log_router ~circuit:name ~engine:"astar" ~domains
                  ~wirelength:res.Gr.total_wirelength ~overflow:res.Gr.overflow dt;
                (res, dt)))
          domain_counts
      in
      let identical = List.for_all (fun (res, _) -> router_outcome_equal base res) pool_results in
      let best_parallel =
        List.fold_left (fun acc (_, dt) -> min acc dt) infinity pool_results
      in
      Printf.printf "%-8s %6d | %10.2f %10.2f %s | %6.2fx %6.2fx %10s\n%!" name
        (Array.length nets) (1000.0 *. seed_dt) (1000.0 *. base_dt)
        (String.concat " "
           (List.map (fun (_, dt) -> Printf.sprintf "%8.2f" (1000.0 *. dt)) pool_results))
        (seed_dt /. base_dt) (seed_dt /. best_parallel)
        (if identical then "yes" else "NO!");
      if not identical then failwith (name ^ ": parallel routing differs from single-domain");
      Printf.printf "%-8s          wirelength seed %.4f / astar %.4f mm, overflow seed %.2f / \
                     astar %.2f\n%!"
        "" seed_wl base.Gr.total_wirelength seed_ov base.Gr.overflow)
    circuits;
  Printf.printf
    "\n(seed = per-query float Dijkstra + Hashtbl BFS sink recovery, sequential rip-up;\n\
     astar = epoch-stamped integer A*/bidirectional engine with CSR sink recovery and\n\
     PathFinder history, negotiated speculatively across the pool; 'identical' checks\n\
     segments, sink paths, wirelengths, overflow and the per-pass trajectory across\n\
     all pool sizes.  Seed and astar wirelengths may differ: the engines are\n\
     cost-identical per query, but history-driven negotiation legitimately picks\n\
     different equal-quality or better trees.  Measured quality delta vs the seed:\n\
     identical wirelength and zero overflow on s27/s386; on s1269/s1423 the astar\n\
     schedule lands within ~2%% / ~0.4%% of the seed wirelength at the same zero\n\
     overflow — equal-cost tie-break differences, not congestion losses.  On this\n\
     single-CPU reference container extra domains cannot beat 1d wall-clock; the\n\
     par-spd column shows the pool tax stays small while results stay identical.)\n"

(* --- T: observability — traced stage breakdown and overhead guard --- *)

let run_trace_observability () =
  section "T   Observability: traced per-stage breakdown; trace-off overhead guard";
  let name = if fast_mode then "s526" else "s1423" in
  (* One traced planning run; its span summary is the per-stage
     breakdown, and the rows land in the --json stage log. *)
  let netlist = Option.get (Suite.by_name name) in
  let ctx = Trace.create () in
  (match Planner.plan ~second_iteration:false ~trace:ctx netlist with
  | Error msg -> Printf.printf "%s: planning failed (%s)\n" name msg
  | Ok _ ->
    Printf.printf "per-stage breakdown of one traced planning run (%s):\n\n" name;
    print_string (Report.render_trace_summary ctx);
    List.iter
      (fun (depth, sname, count, total_s) ->
        log_stage ~name:sname ~circuit:name ~depth ~count (1000.0 *. total_s))
      (Trace.span_summary ~max_depth:2 ctx));
  (* Guard: with tracing off (the default), the hottest kernel must run
     at its untraced speed (<= 2% tolerance) and allocate not one word
     more — the disabled context reduces every hook to a constant
     pattern match. *)
  let g = retime_graph_of name in
  let reps = 10 in
  let _, base_dt = best_of_runs reps (fun () -> Paths.compute g) in
  let _, off_dt = best_of_runs reps (fun () -> Paths.compute ~trace:Trace.disabled g) in
  let live = Trace.create () in
  let _, on_dt = best_of_runs reps (fun () -> Paths.compute ~trace:live g) in
  log_timing ~name:"wd-trace-off" ~circuit:name ~domains:1 off_dt;
  log_timing ~name:"wd-trace-on" ~circuit:name ~domains:1 on_dt;
  let alloc f =
    let before = Gc.minor_words () in
    ignore (f ());
    Gc.minor_words () -. before
  in
  ignore (alloc (fun () -> Paths.compute g));
  let base_words = alloc (fun () -> Paths.compute g) in
  let off_words = alloc (fun () -> Paths.compute ~trace:Trace.disabled g) in
  let overhead = 100.0 *. (off_dt -. base_dt) /. base_dt in
  Printf.printf
    "\n(W,D) on %s: default %.2f ms, trace-off %.2f ms (%+.1f%%), trace-on %.2f ms\n" name
    (1000.0 *. base_dt) (1000.0 *. off_dt) overhead (1000.0 *. on_dt);
  Printf.printf "allocation per run: default %.0f minor words, trace-off %.0f\n" base_words
    off_words;
  (* Passing [~trace] explicitly boxes one [Some] at the call site; the
     kernel itself must not allocate a word more on the disabled path. *)
  if off_words -. base_words > 16.0 then
    failwith "disabled tracing allocates in the (W,D) kernel";
  if off_dt -. base_dt > 0.02 *. base_dt then
    Printf.printf "WARNING: trace-off time outside the 2%% guard (likely machine noise; re-run)\n"
  else Printf.printf "trace-off overhead within the 2%% guard\n"

(* --- E1/E2/E3: Table 1 --- *)

let run_table1 () =
  section "E1/E2  Table 1: interconnect planning, min-area vs LAC-retiming";
  let rows =
    List.filter_map
      (fun (name, netlist) ->
        Printf.eprintf "  planning %s...\n%!" name;
        match Planner.plan netlist with
        | Ok run -> Some (Report.row_of_run ~name run)
        | Error msg ->
          Printf.printf "  %s: planning failed (%s)\n" name msg;
          None)
      (table1_circuits ())
  in
  print_string (Report.render_table1 rows);
  Printf.printf
    "\n(parenthesised N_FOA = after the second planning iteration with\n\
     expanded soft blocks; N/A = min-area produced no violations)\n";
  section "E3  Flip-flops relocated into interconnects (paper: ~10%, up to ~30%)";
  let mean_frac, max_frac = Report.interconnect_ff_fraction rows in
  Printf.printf "LAC N_FN / N_F over the suite: mean %.0f%%, max %.0f%%\n" (100.0 *. mean_frac)
    (100.0 *. max_frac)

(* --- E4: alpha ablation --- *)

let run_alpha_ablation () =
  section "E4  Alpha ablation on s526 (paper 4.2: alpha ~ 0.2 typically best)";
  let inst = ablation_instance () in
  let _, t_clk, cs = constraint_setup inst in
  Printf.printf "T_clk = %.2f ns\n\n%8s %8s %8s %8s\n" t_clk "alpha" "N_FOA" "N_F" "N_wr";
  List.iter
    (fun alpha ->
      match Lac.retime ~alpha inst cs with
      | Ok o -> Printf.printf "%8.2f %8d %8d %8d\n%!" alpha o.Lac.n_foa o.Lac.n_f o.Lac.n_wr
      | Error msg -> Printf.printf "%8.2f failed: %s\n" alpha msg)
    [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.5; 0.8; 1.0 ]

(* --- E5: run time --- *)

let run_runtime () =
  section "E5  Run time: LAC vs min-area; constraint pruning ablation";
  let names = if fast_mode then [ "s298"; "s386" ] else [ "s298"; "s386"; "s400"; "s526" ] in
  Printf.printf "%-8s %12s %12s %8s %14s %14s\n" "circuit" "min-area(s)" "LAC(s)" "N_wr"
    "constraints" "pruned";
  List.iter
    (fun name ->
      let netlist = Option.get (Suite.by_name name) in
      match Build.build netlist with
      | Error msg -> Printf.printf "%-8s build failed: %s\n" name msg
      | Ok inst ->
        let _, _, cs_pruned = constraint_setup ~prune:true inst in
        let _, _, cs_full = constraint_setup ~prune:false inst in
        (match (Lac.min_area_baseline inst cs_pruned, Lac.retime inst cs_pruned) with
        | Ok ma, Ok lac ->
          log_timing ~name:"min-area" ~circuit:name ~domains:1 ma.Lac.exec_seconds;
          log_timing ~name:"lac-retime" ~circuit:name ~domains:1 lac.Lac.exec_seconds;
          Printf.printf "%-8s %12.2f %12.2f %8d %14d %14d\n%!" name ma.Lac.exec_seconds
            lac.Lac.exec_seconds lac.Lac.n_wr
            (List.length cs_full.Constraints.constraints)
            (List.length cs_pruned.Constraints.constraints)
        | Error msg, _ | _, Error msg -> Printf.printf "%-8s failed: %s\n" name msg))
    names;
  Printf.printf
    "\n(the paper's claim: LAC run time is the same order as one min-area\n\
     retiming because the clocking constraints are generated once)\n"

(* --- A1: N_max ablation --- *)

let run_nmax_ablation () =
  section "A1  N_max ablation on s526 (non-improving rounds before stopping)";
  let inst = ablation_instance () in
  let _, _, cs = constraint_setup inst in
  Printf.printf "%8s %8s %8s %10s\n" "N_max" "N_FOA" "N_wr" "time(s)";
  List.iter
    (fun n_max ->
      match timed (fun () -> Lac.retime ~n_max inst cs) with
      | Ok o, dt -> Printf.printf "%8d %8d %8d %10.2f\n%!" n_max o.Lac.n_foa o.Lac.n_wr dt
      | Error msg, _ -> Printf.printf "%8d failed: %s\n" n_max msg)
    [ 1; 3; 5; 10 ]

(* --- A2: tile granularity --- *)

let run_grid_ablation () =
  section "A2  Tile-granularity ablation on s400";
  let netlist = Option.get (Suite.by_name "s400") in
  Printf.printf "%8s %10s %10s %10s %10s\n" "grid" "tiles" "MA N_FOA" "LAC N_FOA" "time(s)";
  List.iter
    (fun grid ->
      let config = { Config.default with Config.grid } in
      match timed (fun () -> Planner.plan ~config ~second_iteration:false netlist) with
      | Ok run, dt ->
        Printf.printf "%8d %10d %10d %10d %10.1f\n%!" grid
          (Lacr_tilegraph.Tilegraph.num_tiles run.Planner.instance.Build.tilegraph)
          run.Planner.minarea.Lac.n_foa run.Planner.lac.Lac.n_foa dt
      | Error msg, _ -> Printf.printf "%8d failed: %s\n" grid msg)
    (if fast_mode then [ 8; 12 ] else [ 8; 10; 12; 16 ])

(* --- A4: floorplanner ablation --- *)

let run_floorplanner_ablation () =
  section "A4  Floorplanner ablation (sequence pair vs slicing tree) on s526";
  let netlist = Option.get (Suite.by_name "s526") in
  Printf.printf "%-14s %10s %10s %12s %12s\n" "engine" "MA N_FOA" "LAC N_FOA" "chip (mm^2)" "time(s)";
  List.iter
    (fun (name, engine) ->
      let config = { Config.default with Config.floorplanner = engine } in
      match timed (fun () -> Planner.plan ~config ~second_iteration:false netlist) with
      | Ok run, dt ->
        let chip = run.Planner.instance.Build.floorplan.Lacr_floorplan.Floorplan.chip in
        Printf.printf "%-14s %10d %10d %12.1f %12.1f\n%!" name run.Planner.minarea.Lac.n_foa
          run.Planner.lac.Lac.n_foa
          (chip.Lacr_geometry.Rect.w *. chip.Lacr_geometry.Rect.h)
          dt
      | Error msg, _ -> Printf.printf "%-14s failed: %s\n" name msg)
    [ ("sequence-pair", Config.Sequence_pair); ("slicing", Config.Slicing) ]

(* --- A3: heuristic vs exact on tiny instances --- *)

let run_exact_gap () =
  section "A3  Heuristic vs exact LAC-retiming on tiny instances (optimality gap)";
  let rng = Lacr_util.Rng.create 4242 in
  let n_trials = 40 in
  let optimal = ref 0 and total_gap = ref 0 and solved = ref 0 in
  for _trial = 1 to n_trials do
    (* Tiny ring-with-chords problems, the test suite's generator
       shape. *)
    let n = 4 + Lacr_util.Rng.int rng 2 in
    let delays =
      Array.init n (fun v -> if v = 0 then 0.0 else float_of_int (1 + Lacr_util.Rng.int rng 4))
    in
    let ring =
      List.init n (fun v ->
          { Lacr_retime.Graph.src = v; dst = (v + 1) mod n; weight = 1 })
    in
    let chords = ref [] in
    for _c = 1 to Lacr_util.Rng.int rng n do
      let src = Lacr_util.Rng.int rng n and dst = Lacr_util.Rng.int rng n in
      if src <> dst then chords := { Lacr_retime.Graph.src; dst; weight = 1 } :: !chords
    done;
    let g = Lacr_retime.Graph.create ~delays ~edges:(ring @ !chords) ~host:0 in
    let n_tiles = 2 + Lacr_util.Rng.int rng 2 in
    let problem =
      {
        Lacr_core.Problem.graph = g;
        vertex_tile = Array.init n (fun v -> if v = 0 then -1 else Lacr_util.Rng.int rng n_tiles);
        n_tiles;
        capacity = Array.init n_tiles (fun _ -> float_of_int (Lacr_util.Rng.int rng 3));
        ff_area = 1.0;
        interconnect = Array.make n false;
      }
    in
    let wd = Paths.compute g in
    let mp = Feasibility.min_period g wd in
    let cs =
      Constraints.generate ~prune:true g wd
        ~period:(mp.Feasibility.period +. (float_of_int (Lacr_util.Rng.int rng 3) /. 2.0))
    in
    match (Lacr_core.Exact.solve ~range:6 problem cs, Lac.retime_problem problem cs) with
    | Some exact, Ok heuristic ->
      incr solved;
      let gap = heuristic.Lac.n_foa - exact.Lacr_core.Exact.n_foa in
      total_gap := !total_gap + gap;
      if gap = 0 then incr optimal
    | _ -> ()
  done;
  Printf.printf
    "tiny instances solved exactly: %d; heuristic optimal on %d (%.0f%%), total violation gap %d\n"
    !solved !optimal
    (100.0 *. float_of_int !optimal /. float_of_int (max 1 !solved))
    !total_gap

(* --- F1/F2: figures --- *)

let run_figures () =
  section "F1  Figure 1: interconnect planning in the design flow";
  print_string (Report.render_flow_figure ());
  section "F2  Figure 2: tile graph (s298)";
  let netlist = Option.get (Suite.by_name "s298") in
  match Build.build netlist with
  | Ok inst -> print_string (Report.render_tile_figure inst)
  | Error msg -> Printf.printf "build failed: %s\n" msg

(* --- bechamel micro-benchmarks --- *)

let run_bechamel () =
  section "B   Bechamel micro-benchmarks of the planner kernels (s298-sized)";
  let open Bechamel in
  let netlist = Option.get (Suite.by_name "s298") in
  let inst = match Build.build netlist with Ok inst -> inst | Error msg -> failwith msg in
  let g = inst.Build.graph in
  let wd = Paths.compute g in
  let extra = inst.Build.pin_constraints in
  let mp = Feasibility.min_period ~extra g wd in
  let t_init = Graph.clock_period g in
  let t_clk = mp.Feasibility.period +. (0.2 *. (t_init -. mp.Feasibility.period)) in
  let cs = Constraints.generate ~prune:true ~extra g wd ~period:t_clk in
  let area = Array.make (Graph.num_vertices g) 1.0 in
  let tests =
    [
      Test.make ~name:"wd-matrices" (Staged.stage (fun () -> ignore (Paths.compute g)));
      Test.make ~name:"dijkstra-row-csr"
        (Staged.stage (fun () -> ignore (Paths.min_weights g 0)));
      Test.make ~name:"constraint-gen-pruned"
        (Staged.stage (fun () ->
             ignore (Constraints.generate ~prune:true ~extra g wd ~period:t_clk)));
      Test.make ~name:"feasibility-probe"
        (Staged.stage (fun () -> ignore (Feasibility.feasible ~extra g wd ~period:t_clk)));
      Test.make ~name:"weighted-min-area"
        (Staged.stage (fun () -> ignore (Min_area.solve_weighted g cs ~area)));
      Test.make ~name:"clock-period" (Staged.stage (fun () -> ignore (Graph.clock_period g)));
      Test.make ~name:"cycle-ratio-bound"
        (Staged.stage (fun () -> ignore (Feasibility.cycle_ratio_lower_bound g)));
    ]
  in
  let results =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun test ->
        let instances = Toolkit.Instance.[ monotonic_clock ] in
        let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.8) () in
        Hashtbl.iter (fun k v -> Hashtbl.replace tbl k v) (Benchmark.all cfg instances test))
      tests;
    tbl
  in
  let ols =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock results
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | Some _ | None -> rows := (name, nan) :: !rows)
    ols;
  List.iter
    (fun (name, est) ->
      if Float.is_nan est then Printf.printf "  %-28s (no estimate)\n" name
      else if est > 1.0e6 then Printf.printf "  %-28s %10.2f ms/run\n" name (est /. 1.0e6)
      else Printf.printf "  %-28s %10.2f us/run\n" name (est /. 1.0e3))
    (List.sort compare !rows)

let () =
  Printf.printf "LAC-retiming benchmark harness (fast mode: %b)\n" fast_mode;
  if want "P" then run_wd_scaling ();
  if want "S" then run_scale ();
  if want "Q" then run_warm_engine ();
  if want "R" then run_router_scaling ();
  if want "T" then run_trace_observability ();
  if want "E" then run_table1 ();
  if want "E" then run_alpha_ablation ();
  if want "E" then run_runtime ();
  if want "A" then run_nmax_ablation ();
  if want "A" then run_grid_ablation ();
  if want "A" then run_floorplanner_ablation ();
  if want "A" then run_exact_gap ();
  if want "F" then run_figures ();
  if want "B" then run_bechamel ();
  (match json_path with Some path -> write_json path | None -> ());
  print_newline ()
