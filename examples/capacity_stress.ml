(* Capacity stress: a floorplan with hard IP blocks and deliberately
   tight soft-block headroom.  Plain min-area retiming piles relocated
   flip-flops into tiles that cannot hold them; LAC-retiming trades a
   few extra registers for a floorplan that still closes.

   Run with:  dune exec examples/capacity_stress.exe *)

module Planner = Lacr_core.Planner
module Build = Lacr_core.Build
module Lac = Lacr_core.Lac
module Config = Lacr_core.Config
module Area = Lacr_core.Area
module Tilegraph = Lacr_tilegraph.Tilegraph

let () =
  let netlist = Option.get (Lacr_circuits.Suite.by_name "s526") in
  (* Every third block is a hard macro (sites only); block headroom is
     squeezed to 1.2x and channels are thin. *)
  let config =
    {
      Config.default with
      Config.hard_block_every = 3;
      block_area_inflation = 1.2;
      channel_density = 0.5;
      hard_sites_per_cell = 0.5;
    }
  in
  match Planner.plan ~config ~second_iteration:true netlist with
  | Error msg -> Printf.eprintf "planning failed: %s\n" msg
  | Ok run ->
    let inst = run.Planner.instance in
    let hard_blocks =
      Array.fold_left
        (fun acc b -> if Lacr_floorplan.Block.is_soft b then acc else acc + 1)
        0 inst.Build.blocks
    in
    Printf.printf "floorplan: %d blocks (%d hard), %.0f%% utilization\n\n"
      (Array.length inst.Build.blocks) hard_blocks
      (100.0 *. Lacr_floorplan.Floorplan.utilization inst.Build.floorplan);
    let show name (o : Lac.outcome) =
      let report = Area.report inst ~labels:o.Lac.labels in
      let kinds =
        List.map
          (fun (tile, _) ->
            match (Tilegraph.tiles inst.Build.tilegraph).(tile).Tilegraph.kind with
            | Tilegraph.Channel -> "channel"
            | Tilegraph.Hard_cell _ -> "hard"
            | Tilegraph.Soft_merged _ -> "soft")
          report.Area.violated_tiles
      in
      let count k = List.length (List.filter (( = ) k) kinds) in
      Printf.printf "%-9s N_FOA=%-3d N_F=%-3d violated tiles: %d soft, %d hard, %d channel\n" name
        o.Lac.n_foa o.Lac.n_f (count "soft") (count "hard") (count "channel")
    in
    show "min-area" run.Planner.minarea;
    show "LAC" run.Planner.lac;
    (match run.Planner.second with
    | Some (Ok { Planner.lac2 = Ok o2; _ }) ->
      Printf.printf
        "\nafter expanding the congested soft blocks (2nd planning iteration): N_FOA = %d\n"
        o2.Lac.n_foa
    | Some (Ok { Planner.lac2 = Error msg; _ }) ->
      Printf.printf "\n2nd planning iteration became infeasible (%s) —\n" msg;
      print_endline "the paper observed the same failure mode on s1269."
    | Some (Error msg) ->
      Printf.printf "\n2nd planning iteration build failed (%s).\n" msg
    | None -> print_endline "\nno second iteration was needed.");
    print_newline ();
    print_string (Lacr_core.Report.render_tile_figure inst)
