# One-command gate for every PR: full build, tier-1 tests, and a
# planner smoke run on the embedded s27 circuit.

.PHONY: all build test smoke smoke-warm check bench clean

all: build

build:
	dune build @all

test:
	dune runtest

smoke:
	dune exec bin/lacr_cli.exe -- plan s27

# Warm/cold solver cross-check: the successive-instance MCMF engine
# must reproduce the cold per-round outcomes exactly.
smoke-warm:
	dune exec bin/lacr_cli.exe -- verify-warm s27

check: build test smoke smoke-warm

bench:
	LACR_BENCH_FAST=1 dune exec bench/main.exe -- --json BENCH_fast.json

clean:
	dune clean
