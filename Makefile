# One-command gate for every PR: full build, tier-1 tests, and a
# planner smoke run on the embedded s27 circuit.

.PHONY: all build test lint smoke smoke-warm smoke-trace smoke-sanitize smoke-route smoke-scale smoke-serve check bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# Determinism & domain-safety linter (R1-R4, see DESIGN.md): exits
# non-zero on any finding not covered by a justified lint.allow entry.
lint: build
	dune exec bin/lacr_lint.exe -- --root . --allow lint.allow

smoke:
	dune exec bin/lacr_cli.exe -- plan s27

# Warm/cold solver cross-check: the successive-instance MCMF engine
# must reproduce the cold per-round outcomes exactly.
smoke-warm:
	dune exec bin/lacr_cli.exe -- verify-warm s27

# Observability smoke: a traced s27 plan must emit a valid Chrome
# trace (monotone per-track timestamps, the pipeline's span names
# present) and a valid metrics dump.
smoke-trace:
	dune exec bin/lacr_cli.exe -- plan s27 \
	  --trace _build/smoke_trace.json --metrics _build/smoke_metrics.json
	dune exec bin/lacr_cli.exe -- trace-check _build/smoke_trace.json \
	  --metrics _build/smoke_metrics.json \
	  --expect plan,build,route.all,paths.compute,constraints.generate,lac.retime,lac.round

# Sanitizer smoke: a full plan with every solver invariant re-checked
# after each step (flow conservation, admissibility, retiming cycle
# sums, tile accounting, CSR shape, span balance).
smoke-sanitize:
	LACR_SANITIZE=1 dune exec bin/lacr_cli.exe -- plan s27

# Router determinism smoke: the negotiated A* router must produce
# bit-identical nets/wirelength/overflow at --domains 1, 2 and 4,
# with the sanitizer re-checking boundary demand after every pass.
smoke-route:
	LACR_SANITIZE=1 dune exec bin/lacr_cli.exe -- verify-route s27

# Scale smoke: plan a ~5x10^4-unit hierarchical circuit under the
# streamed path backend inside a hard 16 GiB address-space ceiling.
# The dense (W,D) matrices alone would need ~57 GiB at this size
# (2 x n^2 x 8 bytes at ~62k retiming-graph vertices), so only the
# memory-bounded streamed engine fits through the ulimit.
smoke-scale: build
	bash -c 'ulimit -v 16777216; exec ./_build/default/bin/lacr_cli.exe \
	  plan hier:50000 --paths-mode stream --domains 2 --second-iteration=false'

# Serving smoke: start lacrd on a private Unix socket, drive it with
# the seeded load generator (cache warm-up, byte-identity of daemon
# results against fresh single-shot plans, metrics aggregation), then
# shut it down over the wire and require a clean daemon exit.
smoke-serve: build
	bash -c 'set -e; sock=$$(mktemp -u /tmp/lacrd_smoke.XXXXXX.sock); \
	  ./_build/default/bin/lacrd.exe --socket $$sock --workers 2 --queue-depth 8 & pid=$$!; \
	  trap "kill $$pid 2>/dev/null || true" EXIT; \
	  ./_build/default/bin/lacr_cli.exe serve-client --socket $$sock \
	    --connections 2 --requests 24 --seed 11 --verify --shutdown; \
	  wait $$pid'

check: build test lint smoke smoke-warm smoke-trace smoke-sanitize smoke-route smoke-scale smoke-serve

bench:
	LACR_BENCH_FAST=1 dune exec bench/main.exe -- --json BENCH_fast.json

clean:
	dune clean
